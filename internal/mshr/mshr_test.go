package mshr

import "testing"

func TestPrimaryAndSecondaryMiss(t *testing.T) {
	f := NewFile(8)
	done, ok := f.Request(10, 100, 30)
	if !ok || done != 30 {
		t.Fatalf("primary miss: done=%d ok=%v", done, ok)
	}
	// Secondary miss on the same block merges and keeps the original
	// completion time.
	done, ok = f.Request(12, 100, 32)
	if !ok || done != 30 {
		t.Fatalf("secondary miss: done=%d ok=%v", done, ok)
	}
	if f.Allocations != 1 || f.Merges != 1 {
		t.Errorf("stats: %+v", *f)
	}
}

func TestCapacityAndStall(t *testing.T) {
	f := NewFile(2)
	f.Request(0, 1, 20)
	f.Request(0, 2, 25)
	if _, ok := f.Request(0, 3, 30); ok {
		t.Fatal("third distinct miss should be rejected")
	}
	if f.FullStalls != 1 {
		t.Errorf("FullStalls = %d", f.FullStalls)
	}
	if got := f.NextRetirement(0); got != 20 {
		t.Errorf("NextRetirement = %d, want 20", got)
	}
	// After entry 1 retires at cycle 20 there is room again.
	if _, ok := f.Request(20, 3, 40); !ok {
		t.Fatal("request after retirement rejected")
	}
}

func TestRetirement(t *testing.T) {
	f := NewFile(4)
	f.Request(0, 1, 10)
	f.Request(0, 2, 15)
	if n := f.InFlight(5); n != 2 {
		t.Errorf("InFlight(5) = %d", n)
	}
	if n := f.InFlight(10); n != 1 {
		t.Errorf("InFlight(10) = %d (completion at 10 should retire)", n)
	}
	if n := f.InFlight(100); n != 0 {
		t.Errorf("InFlight(100) = %d", n)
	}
	if f.NextRetirement(100) != 0 {
		t.Error("empty file NextRetirement should be 0")
	}
}

func TestLookup(t *testing.T) {
	f := NewFile(4)
	f.Request(0, 7, 12)
	if c, ok := f.Lookup(3, 7); !ok || c != 12 {
		t.Errorf("Lookup = %d, %v", c, ok)
	}
	if _, ok := f.Lookup(3, 8); ok {
		t.Error("Lookup of absent block succeeded")
	}
	if _, ok := f.Lookup(12, 7); ok {
		t.Error("Lookup after completion should miss")
	}
}

func TestFilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewFile(0)
}

func TestBusSerialization(t *testing.T) {
	b := NewBus(4)
	if done := b.Acquire(0); done != 4 {
		t.Errorf("first transfer done at %d, want 4", done)
	}
	// Second transfer at cycle 1 queues behind the first.
	if done := b.Acquire(1); done != 8 {
		t.Errorf("queued transfer done at %d, want 8", done)
	}
	if b.BusyWait != 3 {
		t.Errorf("BusyWait = %d, want 3", b.BusyWait)
	}
	// A transfer after the bus drains starts immediately.
	if done := b.Acquire(20); done != 24 {
		t.Errorf("idle-bus transfer done at %d, want 24", done)
	}
	if b.Transactions != 3 {
		t.Errorf("Transactions = %d", b.Transactions)
	}
	if b.FreeAt() != 24 {
		t.Errorf("FreeAt = %d", b.FreeAt())
	}
}

func TestBusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBus(0)
}

func TestPaperConfiguration(t *testing.T) {
	// 8 MSHRs, 4-cycle line occupancy: 8 outstanding misses to distinct
	// lines are accepted, the 9th stalls.
	f := NewFile(8)
	for i := uint64(0); i < 8; i++ {
		if _, ok := f.Request(0, i, 20+i); !ok {
			t.Fatalf("miss %d rejected", i)
		}
	}
	if _, ok := f.Request(0, 99, 40); ok {
		t.Error("9th distinct miss accepted")
	}
}
