// Package mshr models the lockup-free miss handling of the paper's L1
// data cache (Kroft [14]): a file of miss status holding registers that
// allows up to N outstanding misses to distinct cache lines, with
// secondary misses to an in-flight line merged into the existing entry,
// plus the 64-bit L1–L2 bus on which a 32-byte line transfer occupies
// four cycles (§4).
package mshr

// File is a set of MSHRs.  Times are in CPU cycles; the caller supplies
// the current cycle on every operation.  The zero value is not usable;
// call NewFile.
type File struct {
	entries  map[uint64]uint64 // block -> completion cycle
	capacity int

	// Stats
	Allocations uint64 // primary misses that took an entry
	Merges      uint64 // secondary misses merged into an entry
	FullStalls  uint64 // requests rejected because the file was full
}

// NewFile returns an MSHR file with the given number of entries.  The
// paper's configuration uses 8.
func NewFile(capacity int) *File {
	if capacity <= 0 {
		panic("mshr: capacity must be positive")
	}
	return &File{entries: make(map[uint64]uint64, capacity), capacity: capacity}
}

// Capacity returns the entry count.
func (f *File) Capacity() int { return f.capacity }

// InFlight returns the number of live entries at the given cycle,
// retiring completed ones first.
func (f *File) InFlight(now uint64) int {
	f.retire(now)
	return len(f.entries)
}

// Lookup returns the completion cycle of an in-flight miss on block, if
// any.
func (f *File) Lookup(now, block uint64) (completion uint64, ok bool) {
	f.retire(now)
	c, ok := f.entries[block]
	return c, ok
}

// Full reports whether the file has no free entry at the given cycle.
func (f *File) Full(now uint64) bool {
	f.retire(now)
	return len(f.entries) >= f.capacity
}

// NoteMerge lets a caller that resolved a secondary miss via Lookup
// record it in the merge statistics.
func (f *File) NoteMerge() { f.Merges++ }

// NoteFullStall lets a caller that pre-checked Full and deferred its
// request record the lockup in the stall statistics.
func (f *File) NoteFullStall() { f.FullStalls++ }

// Request records a miss on block at cycle now that will complete at
// cycle done.  It returns the completion cycle and whether the request
// was accepted: a secondary miss merges (returning the existing, earlier
// completion), a primary miss allocates, and a full file rejects the
// request (the cache locks up until an entry retires).
func (f *File) Request(now, block, done uint64) (completion uint64, accepted bool) {
	f.retire(now)
	if c, ok := f.entries[block]; ok {
		f.Merges++
		return c, true
	}
	if len(f.entries) >= f.capacity {
		f.FullStalls++
		return 0, false
	}
	f.entries[block] = done
	f.Allocations++
	return done, true
}

// NextRetirement returns the earliest completion cycle among live
// entries, or 0 if none; use it to schedule a retry after a FullStall.
func (f *File) NextRetirement(now uint64) uint64 {
	f.retire(now)
	var min uint64
	for _, c := range f.entries {
		if min == 0 || c < min {
			min = c
		}
	}
	return min
}

// retire drops entries whose completion cycle has passed.
func (f *File) retire(now uint64) {
	for b, c := range f.entries {
		if c <= now {
			delete(f.entries, b)
		}
	}
}

// Bus models a single shared bus with fixed per-transaction occupancy:
// a transaction issued at cycle t starts at max(t, free) and holds the
// bus for Occupancy cycles.  The paper's 64-bit L1–L2 bus carries a
// 32-byte line in 4 cycles.
type Bus struct {
	// Occupancy is the cycles one transaction holds the bus.
	Occupancy uint64

	free uint64 // first cycle the bus is idle

	// Transactions counts issued transfers; BusyWait accumulates cycles
	// transactions spent queued behind earlier ones.
	Transactions uint64
	BusyWait     uint64
}

// NewBus returns a bus with the given per-transaction occupancy.
func NewBus(occupancy uint64) *Bus {
	if occupancy == 0 {
		panic("mshr: bus occupancy must be positive")
	}
	return &Bus{Occupancy: occupancy}
}

// Acquire schedules a transaction requested at cycle now and returns the
// cycle the transfer completes.
func (b *Bus) Acquire(now uint64) (done uint64) {
	start := now
	if b.free > start {
		b.BusyWait += b.free - start
		start = b.free
	}
	b.free = start + b.Occupancy
	b.Transactions++
	return b.free
}

// FreeAt returns the first cycle the bus is idle.
func (b *Bus) FreeAt() uint64 { return b.free }
