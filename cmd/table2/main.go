// Command table2 is a deprecated shim: it delegates to `repro table2`,
// the single code path CI exercises.
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	fmt.Fprintln(os.Stderr, "table2 is deprecated; use: repro table2")
	os.Exit(cli.Main(append([]string{"table2"}, os.Args[1:]...)))
}
