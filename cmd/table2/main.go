// Command table2 regenerates the paper's Table 2: IPC and load miss
// ratio for the 18-benchmark suite across the six processor/cache
// configurations (16 KB and 8 KB conventional, with and without address
// prediction; 8 KB skewed I-Poly with the XOR gates off/on the critical
// path, with and without prediction).
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	instrs := flag.Uint64("instructions", 200_000, "instructions per benchmark per configuration")
	seed := flag.Uint64("seed", 1997, "workload seed")
	flag.Parse()
	res := experiments.RunTable2(experiments.Options{Instructions: *instrs, Seed: *seed})
	fmt.Println(res.Render())
}
