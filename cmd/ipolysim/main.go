// Command ipolysim runs the reproduction experiments for "The Design and
// Performance of a Conflict-avoiding Cache" (MICRO-30, 1997).
//
// Usage:
//
//	ipolysim -experiment <name> [-instructions N] [-seed S] [-maxstride M] [-json]
//
// Experiments: fig1, table2, table3, holes, missratio, stddev, colassoc,
// options31, sweep, threec, interleave, ablate — or 'all'.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/experiments"
)

// runner names an experiment and its driver.  run renders text; raw
// returns the structured result for -json output.
type runner struct {
	name string
	desc string
	run  func(experiments.Options) string
	raw  func(experiments.Options) any
}

func runners() []runner {
	return []runner{
		{"fig1", "Figure 1: miss-ratio distribution across strides, 4 index schemes",
			func(o experiments.Options) string { return experiments.RunFig1(o).Render() },
			func(o experiments.Options) any { return experiments.RunFig1(o) }},
		{"table2", "Table 2: IPC & load miss ratio, 18 benchmarks x 6 configurations",
			func(o experiments.Options) string { return experiments.RunTable2(o).Render() },
			func(o experiments.Options) any { return experiments.RunTable2(o) }},
		{"table3", "Table 3: high-conflict programs and bad/good averages",
			func(o experiments.Options) string { return experiments.RunTable3(o).Render() },
			func(o experiments.Options) any { return experiments.RunTable3(o) }},
		{"holes", "§3.3: hole probability model vs simulation",
			func(o experiments.Options) string { return experiments.RunHoles(o).Render() },
			func(o experiments.Options) any { return experiments.RunHoles(o) }},
		{"missratio", "§2.1: cache organization comparison (I-Poly vs alternatives)",
			func(o experiments.Options) string { return experiments.RunOrgs(o).Render() },
			func(o experiments.Options) any { return experiments.RunOrgs(o) }},
		{"stddev", "§5: miss-ratio predictability (stddev across the suite)",
			func(o experiments.Options) string { return experiments.RunStdDev(o).Render() },
			func(o experiments.Options) any { return experiments.RunStdDev(o) }},
		{"colassoc", "§3.1 option 4: column-associative polynomial rehash",
			func(o experiments.Options) string { return experiments.RunColAssoc(o).Render() },
			func(o experiments.Options) any { return experiments.RunColAssoc(o) }},
		{"options31", "§3.1: the four routes around minimum-page-size limits",
			func(o experiments.Options) string { return experiments.RunOptions31(o).Render() },
			func(o experiments.Options) any { return experiments.RunOptions31(o) }},
		{"sweep", "design-space sweep: size x ways x scheme miss-ratio grid",
			func(o experiments.Options) string { return experiments.RunSweep(o).Render() },
			func(o experiments.Options) any { return experiments.RunSweep(o) }},
		{"threec", "3C miss classification per benchmark, conventional vs I-Poly",
			func(o experiments.Options) string { return experiments.RunThreeC(o).Render() },
			func(o experiments.Options) any { return experiments.RunThreeC(o) }},
		{"interleave", "§2.1 lineage: interleaved-memory bank selectors, bandwidth vs stride",
			func(o experiments.Options) string { return experiments.RunInterleave(o).Render() },
			func(o experiments.Options) any { return experiments.RunInterleave(o) }},
		{"ablate", "design-choice ablations (polynomial, skew, bits, replacement, MSHRs, predictor, L2)",
			func(o experiments.Options) string { return experiments.RunAblate(o).Render() },
			func(o experiments.Options) any { return experiments.RunAblate(o) }},
	}
}

func main() {
	var (
		name   = flag.String("experiment", "", "experiment to run (or 'all'); empty lists experiments")
		instrs = flag.Uint64("instructions", 0, "instructions per benchmark per configuration (0 = default)")
		seed   = flag.Uint64("seed", 0, "workload seed (0 = default)")
		stride = flag.Int("maxstride", 0, "figure 1 stride sweep bound (0 = default 4096)")
		rounds = flag.Int("rounds", 0, "figure 1 walk rounds per stride (0 = default)")
		asJSON = flag.Bool("json", false, "emit structured JSON instead of rendered text")
	)
	flag.Parse()

	opts := experiments.Options{
		Instructions: *instrs,
		Seed:         *seed,
		MaxStride:    *stride,
		Fig1Rounds:   *rounds,
	}

	rs := runners()
	sort.Slice(rs, func(i, j int) bool { return rs[i].name < rs[j].name })

	if *name == "" {
		fmt.Println("ipolysim: reproduction harness for the conflict-avoiding cache (MICRO-30 1997)")
		fmt.Println("\nExperiments:")
		for _, r := range rs {
			fmt.Printf("  %-10s %s\n", r.name, r.desc)
		}
		fmt.Println("\nRun one with: ipolysim -experiment <name>   (or 'all')")
		return
	}

	run := func(r runner) {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{r.name: r.raw(opts)}); err != nil {
				fmt.Fprintf(os.Stderr, "ipolysim: %v\n", err)
				os.Exit(1)
			}
			return
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", r.name)
		fmt.Println(r.run(opts))
		fmt.Printf("[%s completed in %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}

	if *name == "all" {
		for _, r := range rs {
			run(r)
		}
		return
	}
	for _, r := range rs {
		if r.name == *name {
			run(r)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "ipolysim: unknown experiment %q\n", *name)
	os.Exit(2)
}
