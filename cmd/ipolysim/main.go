// Command ipolysim is a deprecated shim over the unified `repro` CLI:
// it translates the old `-experiment <name>` flag into the matching
// `repro <name>` subcommand so existing scripts keep working while CI
// exercises a single code path.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/cli"
)

func main() {
	fs := flag.NewFlagSet("ipolysim", flag.ExitOnError)
	name := fs.String("experiment", "", "experiment to run (or 'all'); empty lists experiments")
	instrs := fs.Uint64("instructions", 0, "instructions per benchmark per configuration (0 = default)")
	seed := fs.Uint64("seed", 0, "workload seed (0 = default)")
	stride := fs.Int("maxstride", 0, "figure 1 stride sweep bound (0 = default 4096)")
	rounds := fs.Int("rounds", 0, "figure 1 walk rounds per stride (0 = default)")
	asJSON := fs.Bool("json", false, "emit structured JSON instead of rendered text")
	fs.Parse(os.Args[1:])

	fmt.Fprintln(os.Stderr, "ipolysim is deprecated; use: repro <experiment>")
	if *name == "" {
		os.Exit(cli.Main([]string{"list"}))
	}
	args := []string{*name,
		"-instructions", strconv.FormatUint(*instrs, 10),
		"-seed", strconv.FormatUint(*seed, 10),
		"-maxstride", strconv.Itoa(*stride),
		"-rounds", strconv.Itoa(*rounds),
	}
	if *asJSON {
		args = append(args, "-json")
	}
	os.Exit(cli.Main(args))
}
