// Command tracesim replays a binary trace file (produced by
// cmd/tracegen or any tool emitting the same format) through a cache
// configuration and reports hit/miss statistics with a 3C miss
// breakdown — the trace-driven half of the paper's methodology.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/index"
	"repro/internal/trace"
)

func main() {
	path := flag.String("trace", "", "binary trace file (required)")
	size := flag.Int("size", 8<<10, "cache size in bytes")
	block := flag.Int("block", 32, "block size in bytes")
	ways := flag.Int("ways", 2, "associativity")
	scheme := flag.String("scheme", "a2-Hp-Sk", "index scheme: a2, a2-Hx, a2-Hx-Sk, a2-Hp, a2-Hp-Sk")
	addrBits := flag.Int("addrbits", 19, "address bits feeding hash schemes")
	flag.Parse()

	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}

	sets := *size / *block / *ways
	setBits := 0
	for s := sets; s > 1; s >>= 1 {
		setBits++
	}
	blockBits := 0
	for b := *block; b > 1; b >>= 1 {
		blockBits++
	}
	place, err := index.New(index.Scheme(*scheme), setBits, *ways, *addrBits-blockBits)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracesim: %v\n", err)
		os.Exit(2)
	}
	c := cache.New(cache.Config{
		Size: *size, BlockSize: *block, Ways: *ways,
		Placement: place, WriteAllocate: false,
	})
	cl := cache.NewClassifier(*size / *block)

	f, err := os.Open(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracesim: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	r := trace.NewReader(f)
	n := 0
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		if !rec.Op.IsMem() {
			continue
		}
		res := c.Access(rec.Addr, rec.Op == trace.OpStore)
		cl.Observe(c.Block(rec.Addr), !res.Hit)
		n++
	}
	if err := r.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "tracesim: %v\n", err)
		os.Exit(1)
	}

	s := c.Stats()
	brk := cl.Breakdown()
	fmt.Printf("trace: %s  (%d memory references)\n", *path, n)
	fmt.Printf("cache: %dB, %d-way, %dB lines, scheme %s (%d sets)\n",
		*size, *ways, *block, place.Name(), place.Sets())
	fmt.Printf("\naccesses  %10d\nhits      %10d\nmisses    %10d  (%.2f%%)\n",
		s.Accesses, s.Hits, s.Misses, 100*s.MissRatio())
	fmt.Printf("load miss ratio: %.2f%%\n", 100*s.ReadMissRatio())
	fmt.Printf("\n3C breakdown of %d classified misses:\n", brk.Total())
	fmt.Printf("  compulsory %10d\n  capacity   %10d\n  conflict   %10d\n",
		brk.Compulsory, brk.Capacity, brk.Conflict)
}
