// Command tracesim is a deprecated shim: it delegates to `repro tracesim`,
// the single code path CI exercises.
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	fmt.Fprintln(os.Stderr, "tracesim is deprecated; use: repro tracesim")
	os.Exit(cli.Main(append([]string{"tracesim"}, os.Args[1:]...)))
}
