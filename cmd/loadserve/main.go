// Command loadserve load-tests a running `repro serve` instance: it
// drives concurrent clients through POST /v1/jobs?wait=1 submissions
// and prints a JSON throughput/latency summary (serve.LoadResult) on
// stdout.
//
// The -seeds flag sweeps the submitted config's seed over i % seeds, so
// seeds=1 makes every request identical (all warm requests ride the
// cache fast path, and concurrent cold ones coalesce), while a larger
// value spreads the load over distinct simulations.
//
// Usage:
//
//	repro serve -addr 127.0.0.1:8080 &
//	go run ./cmd/loadserve -addr http://127.0.0.1:8080 -clients 8 -n 200
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the repro serve instance")
	clients := flag.Int("clients", 4, "concurrent clients")
	n := flag.Int("n", 100, "total requests across all clients")
	experiment := flag.String("experiment", "stddev", "experiment to submit")
	instructions := flag.Int("instructions", 20_000, "instructions per simulated trace")
	seeds := flag.Int("seeds", 8, "distinct seeds to sweep (1 = identical requests)")
	flag.Parse()
	if *seeds < 1 {
		*seeds = 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := serveLoad(ctx, *addr, *clients, *n, *experiment, *instructions, *seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadserve: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fmt.Fprintf(os.Stderr, "loadserve: %v\n", err)
		os.Exit(1)
	}
}
