package main

import (
	"context"
	"fmt"

	"repro/internal/serve"
)

// serveLoad builds the seed-sweeping request body generator and runs
// the shared load harness against the server at base.
func serveLoad(ctx context.Context, base string, clients, n int, experiment string, instructions, seeds int) (serve.LoadResult, error) {
	body := func(i int) []byte {
		return []byte(fmt.Sprintf(`{"experiment": %q, "config": {"instructions": %d, "seed": %d}}`,
			experiment, instructions, i%seeds+1))
	}
	return serve.RunLoad(ctx, serve.LoadOptions{
		BaseURL:  base,
		Clients:  clients,
		Requests: n,
		Body:     body,
	})
}
