// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// results (BENCH_cache.json, BENCH_trace.json) and track the perf
// trajectory per PR.  The optional -suite flag names the benchmark
// suite in the report so archived documents are self-describing.
//
// Usage:
//
//	go test -run '^$' -bench 'CacheAccess|Hierarchy' . | go run ./cmd/benchjson -suite cache > BENCH_cache.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations uint64             `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole document.
type Report struct {
	Suite      string      `json:"suite,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	suite := flag.String("suite", "", "suite name recorded in the report (e.g. cache, trace)")
	flag.Parse()
	rep := Report{Suite: *suite, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench decodes one result line of the form
//
//	BenchmarkName-8  1000  123.4 ns/op  5.6 custom-metric  0 B/op
func parseBench(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, false
	}
	name := f[0]
	// Strip the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		unit := f[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
		} else {
			b.Metrics[unit] = val
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
