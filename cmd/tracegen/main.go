// Command tracegen writes a synthetic benchmark trace to a file in the
// repository's binary trace format (or human-readable text), so traces
// can be archived, diffed, or replayed by cmd/tracesim and external
// tools.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "tomcatv", "benchmark profile name (see workload.Suite)")
	n := flag.Int("n", 100_000, "instructions to emit")
	seed := flag.Uint64("seed", 1997, "generator seed")
	out := flag.String("o", "", "output file (default <bench>.trace)")
	text := flag.Bool("text", false, "write text format instead of binary")
	memOnly := flag.Bool("mem", false, "emit only loads and stores")
	flag.Parse()

	prof, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown benchmark %q; known:\n", *bench)
		for _, p := range workload.Suite() {
			fmt.Fprintf(os.Stderr, "  %s\n", p.Name)
		}
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = prof.Name + ".trace"
		if *text {
			path = prof.Name + ".trace.txt"
		}
	}

	var s trace.Stream = &trace.Limit{S: workload.Stream(prof, *seed), N: *n}
	if *memOnly {
		s = &trace.Limit{S: &trace.MemOnly{S: workload.Stream(prof, *seed)}, N: *n}
	}

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	count := 0
	if *text {
		recs := trace.Collect(s, 0)
		if err := trace.WriteText(f, recs); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		count = len(recs)
	} else {
		w := trace.NewWriter(f)
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if err := w.Write(r); err != nil {
				fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
				os.Exit(1)
			}
			count++
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %d records of %s to %s\n", count, prof.Name, path)
}
