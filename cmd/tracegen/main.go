// Command tracegen is a deprecated shim: it delegates to `repro tracegen`,
// the single code path CI exercises.
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	fmt.Fprintln(os.Stderr, "tracegen is deprecated; use: repro tracegen")
	os.Exit(cli.Main(append([]string{"tracegen"}, os.Args[1:]...)))
}
