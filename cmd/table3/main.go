// Command table3 regenerates the paper's Table 3: the three
// high-conflict programs (tomcatv, swim, wave5) plus the bad/good
// average rows derived from the Table 2 simulations.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	instrs := flag.Uint64("instructions", 200_000, "instructions per benchmark per configuration")
	seed := flag.Uint64("seed", 1997, "workload seed")
	flag.Parse()
	res := experiments.RunTable3(experiments.Options{Instructions: *instrs, Seed: *seed})
	fmt.Println(res.Render())
}
