// Command table3 is a deprecated shim: it delegates to `repro table3`,
// the single code path CI exercises.
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	fmt.Fprintln(os.Stderr, "table3 is deprecated; use: repro table3")
	os.Exit(cli.Main(append([]string{"table3"}, os.Args[1:]...)))
}
