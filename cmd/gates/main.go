// Command gates is the hardware-design view of I-Poly indexing: it
// enumerates the irreducible modulus polynomials for a given cache
// geometry, audits the XOR-gate fan-in of each (the paper keeps every
// gate at fan-in <= 5, §3.4), recommends the minimum-fan-in choice, and
// prints the full gate network for the selected polynomial.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gf2"
)

func main() {
	indexBits := flag.Int("indexbits", 7, "cache index bits (degree of P)")
	addrBits := flag.Int("addrbits", 19, "address bits feeding the hash")
	blockBits := flag.Int("blockbits", 5, "block offset bits (excluded from the hash)")
	show := flag.Int("show", 1, "print gate networks for the N best polynomials")
	flag.Parse()

	in := *addrBits - *blockBits
	if in <= *indexBits {
		fmt.Fprintf(os.Stderr, "gates: %d address bits leave %d hash inputs; need more than %d\n",
			*addrBits, in, *indexBits)
		os.Exit(2)
	}

	fmt.Printf("I-Poly index hardware audit: %d index bits, %d hash inputs (address bits %d..%d)\n\n",
		*indexBits, in, *blockBits, *addrBits-1)

	polys, fans := gf2.FanInTable(*indexBits, in)
	fmt.Printf("%-28s %10s %12s %10s\n", "polynomial", "max fan-in", "gate inputs", "primitive")
	bestIdx := 0
	for i, p := range polys {
		fmt.Printf("%-28s %10d %12d %10v\n",
			p, fans[i], gf2.TotalGateInputs(p, in), gf2.Primitive(p))
		if fans[i] < fans[bestIdx] {
			bestIdx = i
		}
	}

	best, fan := gf2.MinFanInIrreducible(*indexBits, in)
	fmt.Printf("\nRecommended modulus: %v (max fan-in %d", best, fan)
	if fan <= 5 {
		fmt.Printf(" — within the paper's 5-input budget)\n")
	} else {
		fmt.Printf(" — exceeds the paper's 5-input budget; consider fewer address bits)\n")
	}

	shown := 0
	for i, p := range polys {
		if fans[i] != fan || shown >= *show {
			continue
		}
		fmt.Printf("\nGate network for P(x) = %v:\n%s", p, gf2.NewModMatrix(p, in).GateDescription())
		shown++
	}
}
