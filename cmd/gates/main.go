// Command gates is a deprecated shim: it delegates to `repro gates`,
// the single code path CI exercises.
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	fmt.Fprintln(os.Stderr, "gates is deprecated; use: repro gates")
	os.Exit(cli.Main(append([]string{"gates"}, os.Args[1:]...)))
}
