// Command repro is the unified experiment runner for "The Design and
// Performance of a Conflict-avoiding Cache" (MICRO-30, 1997).  Its
// subcommands are generated from the experiment registry
// (internal/exp): one per registered experiment — each reproducing a
// paper table, figure or miss-ratio curve study as a Report of tables
// and series — executed on a deterministic parallel sweep engine, plus
// the trace and hardware-audit tools.
//
// Usage:
//
//	repro <experiment> [flags from the experiment's parameter spec] [-json]
//	repro all [flags]
//	repro list [-json]
//
// Run `repro help` for the full subcommand table and `repro list` for
// every experiment's parameters.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:]))
}
