// Command repro is the unified experiment runner for "The Design and
// Performance of a Conflict-avoiding Cache" (MICRO-30, 1997): one
// subcommand per paper table/figure/study, executed on a deterministic
// parallel sweep engine, plus the trace and hardware-audit tools.
//
// Usage:
//
//	repro <experiment> [-instructions N] [-seed S] [-workers W] [-json]
//	repro all [flags]
//	repro list
//
// Run `repro help` for the full subcommand table.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:]))
}
