// Command holes reproduces the §3.3 inclusion-hole study: the analytical
// probability P_H = (2^m1 - 1)/2^m2 that an L2 miss creates a hole at L1,
// validated against simulation across L2 sizes, plus the benchmark-suite
// hole rates on the paper's two-level virtual-real hierarchy.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	instrs := flag.Uint64("instructions", 200_000, "memory accesses scale factor")
	seed := flag.Uint64("seed", 1997, "workload seed")
	flag.Parse()
	res := experiments.RunHoles(experiments.Options{Instructions: *instrs, Seed: *seed})
	fmt.Println(res.Render())
}
