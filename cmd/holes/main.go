// Command holes is a deprecated shim: it delegates to `repro holes`,
// the single code path CI exercises.
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	fmt.Fprintln(os.Stderr, "holes is deprecated; use: repro holes")
	os.Exit(cli.Main(append([]string{"holes"}, os.Args[1:]...)))
}
