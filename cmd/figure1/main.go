// Command figure1 is a deprecated shim: it delegates to `repro fig1`,
// the single code path CI exercises.
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	fmt.Fprintln(os.Stderr, "figure1 is deprecated; use: repro fig1")
	os.Exit(cli.Main(append([]string{"fig1"}, os.Args[1:]...)))
}
