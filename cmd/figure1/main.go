// Command figure1 regenerates the paper's Figure 1: the frequency
// distribution of miss ratios over element strides 1..4095 for the four
// indexing schemes (a2, a2-Hx-Sk, a2-Hp, a2-Hp-Sk) on an 8 KB 2-way
// cache with 32-byte lines.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	maxStride := flag.Int("maxstride", 4096, "sweep element strides 1..maxstride-1")
	rounds := flag.Int("rounds", 17, "vector walk rounds per stride (first is warm-up)")
	flag.Parse()
	res := experiments.RunFig1(experiments.Options{MaxStride: *maxStride, Fig1Rounds: *rounds})
	fmt.Println(res.Render())
}
