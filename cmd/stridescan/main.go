// Command stridescan is an analysis tool for a single stride: it walks
// the Figure 1 vector kernel at one stride through all four indexing
// schemes and prints per-scheme miss ratios and the set-occupancy
// footprint, so a pathological stride can be dissected in detail.
package main

import (
	"flag"
	"fmt"

	"repro/internal/cache"
	"repro/internal/index"
	"repro/internal/workload"
)

func main() {
	stride := flag.Uint64("stride", 1024, "element stride (8-byte elements)")
	elems := flag.Int("elems", 64, "vector length in elements")
	rounds := flag.Int("rounds", 17, "walk rounds (first is warm-up)")
	flag.Parse()

	fmt.Printf("stride %d elements (%d bytes), %d-element vector, %d rounds\n\n",
		*stride, *stride*8, *elems, *rounds)
	fmt.Printf("%-10s %10s %14s\n", "scheme", "miss%", "distinct sets")

	for _, scheme := range index.AllSchemes() {
		place := index.MustNew(scheme, 7, 2, 17)
		c := cache.New(cache.Config{
			Size: 8 << 10, BlockSize: 32, Ways: 2,
			Placement: place, WriteAllocate: false,
		})
		ss := workload.NewStrideStream(0, *stride*8, *elems, *rounds)
		sets := make(map[uint64]struct{})
		warm := *elems
		for {
			r, ok := ss.Next()
			if !ok {
				break
			}
			if warm > 0 {
				warm--
				c.Access(r.Addr, false)
				if warm == 0 {
					c.ResetStats()
				}
				continue
			}
			sets[place.SetIndex(r.Addr>>5, 0)] = struct{}{}
			c.Access(r.Addr, false)
		}
		fmt.Printf("%-10s %9.2f%% %14d\n",
			scheme, 100*c.Stats().MissRatio(), len(sets))
	}
}
