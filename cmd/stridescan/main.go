// Command stridescan is a deprecated shim: it delegates to `repro stridescan`,
// the single code path CI exercises.
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	fmt.Fprintln(os.Stderr, "stridescan is deprecated; use: repro stridescan")
	os.Exit(cli.Main(append([]string{"stridescan"}, os.Args[1:]...)))
}
