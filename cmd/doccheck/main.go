// Command doccheck is the repository's documentation gate, run by
// `make lint` and CI.  It has two modes:
//
// Symbol mode (default) parses the Go packages under the given paths
// (a trailing /... walks recursively) and fails if any exported
// package-level symbol — function, method on an exported type, type,
// const or var — lacks a doc comment, or if a package has no package
// comment.  It is a dependency-free stand-in for staticcheck's
// exported-comment checks: the container this repo builds in has no
// module proxy, so the gate is implemented on go/parser alone.
//
// Link mode (-links) reads the given markdown files, fails if any
// relative link target does not exist, and — when more than one file is
// given — requires the first file and each later file to reference each
// other, pinning the README <-> docs/ARCHITECTURE.md cross-links.
//
// Usage:
//
//	go run ./cmd/doccheck ./internal/... ./cmd/...
//	go run ./cmd/doccheck -links README.md docs/ARCHITECTURE.md
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	links := flag.Bool("links", false, "check markdown cross-links instead of Go doc comments")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "doccheck: no paths given")
		os.Exit(2)
	}
	var problems []string
	if *links {
		problems = checkLinks(args)
	} else {
		problems = checkDocs(args)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// expandDirs resolves the path arguments into the set of directories to
// parse: a plain path names one directory, a trailing /... walks it.
func expandDirs(args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		recursive := false
		if strings.HasSuffix(arg, "/...") {
			recursive = true
			arg = strings.TrimSuffix(arg, "/...")
		}
		arg = filepath.Clean(arg)
		if !recursive {
			add(arg)
			continue
		}
		err := filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name != arg && (strings.HasPrefix(name, ".") || name == "testdata") {
					return filepath.SkipDir
				}
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// checkDocs parses every package under the argument paths and returns
// one problem line per undocumented exported symbol or package.
func checkDocs(args []string) []string {
	dirs, err := expandDirs(args)
	if err != nil {
		return []string{fmt.Sprintf("doccheck: %v", err)}
	}
	var problems []string
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", dir, err))
			continue
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			problems = append(problems, checkPackage(fset, dir, pkg)...)
		}
	}
	return problems
}

// checkPackage checks one parsed package: a package comment somewhere,
// and a doc comment on every exported top-level symbol.
func checkPackage(fset *token.FileSet, dir string, pkg *ast.Package) []string {
	var problems []string
	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			problems = append(problems, checkDecl(fset, decl)...)
		}
	}
	return problems
}

// checkDecl returns problems for one top-level declaration.
func checkDecl(fset *token.FileSet, decl ast.Decl) []string {
	var problems []string
	bad := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		if recv := receiverTypeName(d); recv != "" && !ast.IsExported(recv) {
			return nil // method on an unexported type: internal API
		}
		kind := "function"
		name := d.Name.Name
		if r := receiverTypeName(d); r != "" {
			kind = "method"
			name = r + "." + name
		}
		bad(d.Pos(), kind, name)
	case *ast.GenDecl:
		kind := map[token.Token]string{token.TYPE: "type", token.CONST: "const", token.VAR: "var"}[d.Tok]
		if kind == "" {
			return nil // imports
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					bad(s.Pos(), kind, s.Name.Name)
				}
			case *ast.ValueSpec:
				// A doc comment on the grouped decl covers the whole
				// block (the const-block idiom); otherwise each exported
				// spec needs its own doc or trailing comment.
				if d.Doc != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() && s.Doc == nil && s.Comment == nil {
						bad(n.Pos(), kind, n.Name)
					}
				}
			}
		}
	}
	return problems
}

// receiverTypeName extracts the named receiver type of a method ("" for
// plain functions).
func receiverTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// mdLink matches inline markdown links; bare URLs and reference-style
// links are out of scope for this gate.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// checkLinks verifies that every relative link in the given markdown
// files resolves, and that the first file and each later file link to
// each other.
func checkLinks(files []string) []string {
	var problems []string
	linksOf := make(map[string][]string)
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", file, err))
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(file), target)
			if strings.HasPrefix(resolved, "..") {
				continue // escapes the repo (e.g. GitHub's ../../actions badge idiom)
			}
			linksOf[file] = append(linksOf[file], resolved)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %s (%s)", file, m[1], resolved))
			}
		}
	}
	refs := func(from, to string) bool {
		want := filepath.Clean(to)
		for _, l := range linksOf[from] {
			if filepath.Clean(l) == want {
				return true
			}
		}
		return false
	}
	for _, other := range files[1:] {
		if !refs(files[0], other) {
			problems = append(problems, fmt.Sprintf("%s: does not link to %s", files[0], other))
		}
		if !refs(other, files[0]) {
			problems = append(problems, fmt.Sprintf("%s: does not link back to %s", other, files[0]))
		}
	}
	return problems
}
